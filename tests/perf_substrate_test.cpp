// Differential suite for the substrate performance layer: buffer pooling,
// copy coalescing, plan memoization and the timing-only fast path are
// host-side optimizations that must leave every RunResult field —
// makespan, phase timings, fabric and fault counters, autotune decision —
// bit-identical to the legacy code paths, for fault-free and fault-injected
// runs alike, at any worker count. Each optimization keeps a test hook
// that restores the legacy behaviour; these tests run both arms over a
// grid of specs chosen to hit every engine path (tiny-segment tile, flash,
// hierarchical, one-sided, Auto, fault injection) and compare fingerprints.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/segcopy.hpp"
#include "harness/sweep.hpp"
#include "simbase/bufpool.hpp"

namespace coll = tpio::coll;
namespace net = tpio::net;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

/// Every RunResult field except verify_error (compared separately: the
/// timing-only arm never verifies).
std::string fp(const xp::RunResult& r) {
  std::string s;
  auto add = [&](auto v) {
    s += std::to_string(v);
    s += '|';
  };
  auto add_timings = [&](const coll::PhaseTimings& t) {
    add(t.meta);
    add(t.pack);
    add(t.gather);
    add(t.forward);
    add(t.shuffle);
    add(t.sync);
    add(t.write);
    add(t.backoff);
    add(t.total);
  };
  add(r.makespan);
  add_timings(r.rank_sum);
  add_timings(r.agg_sum);
  add_timings(r.agg_max);
  add(r.aggregators);
  add(r.cycles);
  add(r.bytes);
  add(r.inter_node_bytes);
  add(r.inter_node_messages);
  add(r.intra_node_bytes);
  add(r.pipelined_overlap);
  add(r.autotune.engaged);
  add(static_cast<int>(r.autotune.chosen));
  add(r.autotune.from_cache);
  add(r.autotune.probe_cycles);
  add(r.autotune.comm_share);
  add(r.autotune.aio_ratio);
  add(r.faults.retries);
  add(r.faults.giveups);
  add(r.faults.degraded_cycles);
  s += r.io_error;
  s += '|';
  return s;
}

/// Scoped legacy-arm switch; restores the optimized defaults on exit.
struct Arms {
  Arms(bool pool, bool coalesce, bool plans) {
    sim::BufferPool::set_recycling(pool);
    coll::segcopy::set_coalescing(coalesce);
    coll::PlanCache::set_enabled(plans);
    if (!plans) coll::PlanCache::clear();
  }
  ~Arms() {
    sim::BufferPool::set_recycling(true);
    coll::segcopy::set_coalescing(true);
    coll::PlanCache::set_enabled(true);
  }
};

/// Specs chosen to cover the distinct engine paths the optimizations
/// touch: single-extent IOR, many-tiny-segments tile, multi-extent flash,
/// hierarchical gather, one-sided puts, the Auto probe phase, and a
/// fault-injected run (retries + backoff).
std::vector<std::pair<std::string, xp::RunSpec>> diff_specs() {
  auto base = [](wl::Spec w, int P) {
    xp::RunSpec s;
    s.platform = xp::scaled(xp::ibex());
    s.workload = std::move(w);
    s.nprocs = P;
    s.options.cb_size = xp::kCbSize;
    s.seed = 11;
    return s;
  };
  std::vector<std::pair<std::string, xp::RunSpec>> out;
  {
    xp::RunSpec s = base(wl::make_ior(1u << 20), 16);
    s.options.overlap = coll::OverlapMode::WriteComm2;
    out.emplace_back("ior-wc2", s);
  }
  {
    xp::RunSpec s = base(wl::make_tile256(16, 64), 16);
    s.options.overlap = coll::OverlapMode::Comm;
    out.emplace_back("tile256-comm", s);
  }
  {
    xp::RunSpec s = base(wl::make_tile1m(1, 2), 16);
    s.options.overlap = coll::OverlapMode::Write;
    s.options.transfer = coll::Transfer::OneSidedFence;
    out.emplace_back("tile1m-write-1sided", s);
  }
  {
    xp::RunSpec s = base(wl::make_flash(4, 4, 1u << 15), 32);
    s.options.overlap = coll::OverlapMode::WriteComm;
    s.options.hierarchical = true;
    s.options.leader_policy = coll::LeaderPolicy::Spread;
    out.emplace_back("flash-hier", s);
  }
  {
    xp::RunSpec s = base(wl::make_ior(1u << 19), 16);
    s.options.overlap = coll::OverlapMode::Auto;
    out.emplace_back("ior-auto", s);
  }
  {
    xp::RunSpec s = base(wl::make_ior(1u << 18), 16);
    s.options.overlap = coll::OverlapMode::WriteComm2;
    s.options.max_retries = 8;
    s.platform.pfs.faults.write_fail_rate = 0.2;
    s.platform.pfs.faults.seed = 7;
    out.emplace_back("ior-faults", s);
  }
  return out;
}

/// Run every diff spec with the optimized arm and with `legacy`, in both
/// verify modes, and demand bit-identical fingerprints.
void expect_arms_identical(bool pool, bool coalesce, bool plans) {
  for (const auto& [name, spec] : diff_specs()) {
    for (bool verify : {false, true}) {
      xp::RunSpec s = spec;
      s.verify = verify;
      const xp::RunResult opt = xp::execute(s);
      Arms legacy(pool, coalesce, plans);
      const xp::RunResult leg = xp::execute(s);
      EXPECT_EQ(fp(opt), fp(leg)) << name << " verify=" << verify;
      EXPECT_EQ(opt.verify_error, leg.verify_error) << name;
      if (verify) EXPECT_EQ(opt.verify_error, "") << name;
    }
  }
}

TEST(PerfDiff, PooledVsLegacyAllocationsBitIdentical) {
  expect_arms_identical(/*pool=*/false, /*coalesce=*/true, /*plans=*/true);
}

TEST(PerfDiff, CoalescedVsPerSegmentCopiesBitIdentical) {
  expect_arms_identical(/*pool=*/true, /*coalesce=*/false, /*plans=*/true);
}

TEST(PerfDiff, MemoizedVsFreshPlansBitIdentical) {
  expect_arms_identical(/*pool=*/true, /*coalesce=*/true, /*plans=*/false);
}

TEST(PerfDiff, AllOptimizationsVsAllLegacyBitIdentical) {
  expect_arms_identical(/*pool=*/false, /*coalesce=*/false, /*plans=*/false);
}

// The timing-only fast path (verify=false => Options::materialize=false)
// must match a fully materialized run on every field except verification
// itself: fault verdicts are pure functions of offsets and the virtual
// clock never reads payload bytes. The materialized arm's digest doubles
// as the content check.
TEST(PerfDiff, TimingOnlyMatchesMaterializedRun) {
  for (const auto& [name, spec] : diff_specs()) {
    xp::RunSpec fast = spec;
    fast.verify = false;
    xp::RunSpec full = spec;
    full.verify = true;
    const xp::RunResult a = xp::execute(fast);
    const xp::RunResult b = xp::execute(full);
    EXPECT_EQ(fp(a), fp(b)) << name;
    EXPECT_EQ(b.verify_error, "") << name;
  }
}

// The executor's thread pool must not perturb results through the pooling
// layer: rank threads of concurrent runs release buffers into different
// thread-local pools and repopulate from the shared reservoir, and plan
// memoization is shared across workers. jobs=1 vs jobs=8 must agree on
// every fingerprint.
TEST(PerfDiff, ExecutorJobsInvariantWithPoolingAndPlanCache) {
  const auto specs = diff_specs();
  auto grid = [&](int jobs) {
    std::vector<std::string> fps(specs.size() * 2);
    std::vector<xp::SweepJob> work;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      for (int v = 0; v < 2; ++v) {
        xp::RunSpec s = specs[i].second;
        s.verify = v != 0;
        const std::size_t slot = i * 2 + static_cast<std::size_t>(v);
        work.push_back(xp::SweepJob{
            specs[i].first + (v ? "+verify" : ""), [&fps, slot, s]() {
              fps[slot] = fp(xp::execute(s));
              return 0.0;
            }});
      }
    }
    xp::ExecOptions exec;
    exec.jobs = jobs;
    xp::run_jobs(work, exec);
    return fps;
  };
  const std::vector<std::string> serial = grid(1);
  const std::vector<std::string> parallel = grid(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// BufferPool unit tests
// ---------------------------------------------------------------------------

TEST(BufferPool, RecyclesByClassAndTracksStats) {
  sim::BufferPool::drain_reservoir();
  sim::BufferPool::reset_stats();
  auto& pool = sim::BufferPool::local();
  std::byte* first = nullptr;
  {
    sim::BufferPool::Buffer b = pool.acquire(1000, /*zeroed=*/false);
    ASSERT_EQ(b.size(), 1000u);
    first = b.data();
  }  // released to this thread's free list
  {
    // Same size class (1024) => same storage back, no fresh allocation.
    sim::BufferPool::Buffer b = pool.acquire(600, /*zeroed=*/false);
    EXPECT_EQ(b.data(), first);
    EXPECT_EQ(b.size(), 600u);
  }
  const sim::BufferPool::Stats st = sim::BufferPool::stats();
  EXPECT_EQ(st.acquires, 2u);
  // At least the second acquire is a free-list hit (the first may also hit
  // leftovers from earlier tests in the same process).
  EXPECT_GE(st.hits, 1u);
}

TEST(BufferPool, ZeroedAcquireScrubsRecycledStorage) {
  auto& pool = sim::BufferPool::local();
  {
    sim::BufferPool::Buffer b = pool.acquire(4096, /*zeroed=*/false);
    for (std::byte& x : b.span()) x = std::byte{0xAB};
  }
  sim::BufferPool::Buffer b = pool.acquire(4096, /*zeroed=*/true);
  for (std::byte x : b.span()) ASSERT_EQ(x, std::byte{0});
}

TEST(BufferPool, EmptyAndMovedHandlesAreInert) {
  sim::BufferPool::Buffer empty = sim::BufferPool::local().acquire(0, true);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.span().size(), 0u);
  sim::BufferPool::Buffer a = sim::BufferPool::local().acquire(64, false);
  std::byte* p = a.data();
  sim::BufferPool::Buffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented state
  b.reset();
  EXPECT_TRUE(b.empty());
}

TEST(BufferPool, DyingThreadDonatesToReservoir) {
  sim::BufferPool::drain_reservoir();
  std::thread([] {
    // Populate the worker's local pool, then let the thread die: its free
    // list must reach the reservoir, exactly as conductor rank threads do.
    sim::BufferPool::local().acquire(1 << 16, false);
  }).join();
  sim::BufferPool::reset_stats();
  std::thread([] {
    sim::BufferPool::Buffer b = sim::BufferPool::local().acquire(1 << 16, false);
    EXPECT_EQ(b.size(), std::size_t{1} << 16);
  }).join();
  const sim::BufferPool::Stats st = sim::BufferPool::stats();
  EXPECT_EQ(st.reservoir_hits, 1u) << "fresh thread should refill from the "
                                      "reservoir, not the heap";
}

TEST(BufferPool, RecyclingDisabledFallsBackToHeap) {
  sim::BufferPool::set_recycling(false);
  sim::BufferPool::reset_stats();
  { sim::BufferPool::Buffer b = sim::BufferPool::local().acquire(512, false); }
  { sim::BufferPool::Buffer b = sim::BufferPool::local().acquire(512, false); }
  const sim::BufferPool::Stats st = sim::BufferPool::stats();
  EXPECT_EQ(st.fresh, 2u);
  EXPECT_EQ(st.hits, 0u);
  sim::BufferPool::set_recycling(true);
}

// ---------------------------------------------------------------------------
// PlanCache unit tests
// ---------------------------------------------------------------------------

std::vector<std::vector<std::byte>> blobs_for(const wl::Spec& w, int P) {
  std::vector<std::vector<std::byte>> blobs;
  blobs.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) blobs.push_back(w.view(r, P).serialize());
  return blobs;
}

TEST(PlanCache, HitsOnIdenticalKeyMissesOnDifferentKey) {
  coll::PlanCache::clear();
  const auto blobs = blobs_for(wl::make_ior(1u << 18), 8);
  const net::Topology topo = net::Topology::fit(8, 4);
  coll::Options opt;
  opt.cb_size = 1u << 20;
  const auto a = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  const auto b = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  EXPECT_EQ(a.get(), b.get());
  const auto c = coll::PlanCache::get_or_build(blobs, topo, 1u << 16, opt);
  EXPECT_NE(a.get(), c.get());
  coll::Options hier = opt;
  hier.hierarchical = true;
  const auto d = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, hier);
  EXPECT_NE(a.get(), d.get());
}

TEST(PlanCache, MaterializeFlagDoesNotEnterTheKey) {
  coll::PlanCache::clear();
  const auto blobs = blobs_for(wl::make_ior(1u << 18), 8);
  const net::Topology topo = net::Topology::fit(8, 4);
  coll::Options opt;
  opt.cb_size = 1u << 20;
  opt.materialize = true;
  const auto a = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  opt.materialize = false;
  const auto b = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  EXPECT_EQ(a.get(), b.get());
}

TEST(PlanCache, DisabledBuildsFreshAndClearKeepsLivePlansValid) {
  coll::PlanCache::clear();
  const auto blobs = blobs_for(wl::make_ior(1u << 18), 8);
  const net::Topology topo = net::Topology::fit(8, 4);
  coll::Options opt;
  opt.cb_size = 1u << 20;
  const auto cached = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  coll::PlanCache::set_enabled(false);
  const auto fresh = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
  EXPECT_NE(cached.get(), fresh.get());
  coll::PlanCache::set_enabled(true);
  coll::PlanCache::clear();
  // The shared_ptr keeps evicted plans alive.
  EXPECT_GT(cached->num_aggregators(), 0);
}

TEST(PlanCache, ConcurrentLookupsShareOneConstruction) {
  coll::PlanCache::clear();
  const auto blobs = blobs_for(wl::make_tile256(8, 8), 16);
  const net::Topology topo = net::Topology::fit(16, 4);
  coll::Options opt;
  opt.cb_size = 1u << 20;
  std::vector<std::shared_ptr<const coll::Plan>> got(8);
  std::vector<std::thread> threads;
  threads.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back([&, i] {
      got[i] = coll::PlanCache::get_or_build(blobs, topo, 1u << 17, opt);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
  const coll::PlanCache::Stats st = coll::PlanCache::stats();
  EXPECT_GE(st.lookups, 8u);
  EXPECT_GE(st.hits, 7u);
}

TEST(BufferPool, PerThreadByteCapPinsPeakRetainedBytes) {
  // A long-lived thread (sweep worker, fiber-conductor host) releasing
  // more than its cap must spill to the reservoir, not grow local lists
  // unbounded. Run on a dedicated thread for a clean local pool.
  std::thread([] {
    sim::BufferPool::drain_reservoir();
    const std::size_t kCap = 256 * 1024;
    const std::size_t prev = sim::BufferPool::set_local_cap_bytes(kCap);
    {
      // 16 x 64 KiB outstanding = 1 MiB, four times the cap.
      std::vector<sim::BufferPool::Buffer> bufs;
      for (int i = 0; i < 16; ++i) {
        bufs.push_back(sim::BufferPool::local().acquire(1 << 16, false));
      }
    }  // all released: retention must respect the cap
    EXPECT_LE(sim::BufferPool::local_retained_bytes(), kCap);
    EXPECT_EQ(sim::BufferPool::local_retained_bytes(), kCap);  // peak pinned
    sim::BufferPool::set_local_cap_bytes(prev);
    sim::BufferPool::trim_local();
  }).join();
}

TEST(BufferPool, TrimLocalDonatesToReservoir) {
  // trim_local is what the fiber conductor calls at run teardown — the
  // explicit replacement for the dying-rank-thread reservoir hook.
  std::thread([] {
    sim::BufferPool::drain_reservoir();
    { auto b = sim::BufferPool::local().acquire(1 << 15, false); }
    EXPECT_GT(sim::BufferPool::local_retained_bytes(), 0u);
    sim::BufferPool::trim_local();
    EXPECT_EQ(sim::BufferPool::local_retained_bytes(), 0u);
    sim::BufferPool::reset_stats();
    { auto b = sim::BufferPool::local().acquire(1 << 15, false); }
    EXPECT_EQ(sim::BufferPool::stats().reservoir_hits, 1u)
        << "trimmed buffers must be reachable through the reservoir";
    sim::BufferPool::trim_local();
  }).join();
}

}  // namespace
