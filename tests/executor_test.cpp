#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness/executor.hpp"
#include "simbase/error.hpp"

namespace xp = tpio::xp;

namespace {

/// A scratch file path removed on destruction.
struct TempFile {
  explicit TempFile(const char* stem)
      : path(std::string(::testing::TempDir()) + stem) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

std::vector<xp::SweepJob> square_jobs(int n, std::atomic<int>* executed) {
  std::vector<xp::SweepJob> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(xp::SweepJob{"job/" + std::to_string(i), [i, executed] {
                                  if (executed != nullptr) ++*executed;
                                  return static_cast<double>(i) * i;
                                }});
  }
  return jobs;
}

}  // namespace

TEST(Executor, ResolveJobs) {
  EXPECT_EQ(xp::resolve_jobs(1), 1);
  EXPECT_EQ(xp::resolve_jobs(7), 7);
  // hardware concurrency; >= 1 even where hardware_concurrency() == 0
  EXPECT_GE(xp::resolve_jobs(0), 1);
}

TEST(Executor, EffectiveWorkersClampsToGridSize) {
  // Never more workers than jobs; never fewer than one (even for an empty
  // grid or a 0-core report from the standard library).
  EXPECT_EQ(xp::effective_workers(8, 3), 3);
  EXPECT_EQ(xp::effective_workers(2, 100), 2);
  EXPECT_EQ(xp::effective_workers(4, 4), 4);
  EXPECT_EQ(xp::effective_workers(8, 0), 1);
  EXPECT_EQ(xp::effective_workers(1, 0), 1);
  EXPECT_GE(xp::effective_workers(0, 1000), 1);  // hardware default
  EXPECT_LE(xp::effective_workers(0, 2), 2);
}

TEST(Executor, ResultsInInputOrderRegardlessOfWorkers) {
  for (int workers : {1, 2, 8}) {
    xp::ExecOptions opt;
    opt.jobs = workers;
    const auto results = xp::run_jobs(square_jobs(23, nullptr), opt);
    ASSERT_EQ(results.size(), 23u) << "workers=" << workers;
    for (int i = 0; i < 23; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(i)],
                static_cast<double>(i) * i)
          << "workers=" << workers;
    }
  }
}

TEST(Executor, EmptyJobListIsFine) {
  xp::ExecOptions opt;
  opt.jobs = 4;
  EXPECT_TRUE(xp::run_jobs({}, opt).empty());
}

TEST(Executor, DuplicateKeysRejected) {
  std::vector<xp::SweepJob> jobs;
  jobs.push_back(xp::SweepJob{"same", [] { return 1.0; }});
  jobs.push_back(xp::SweepJob{"same", [] { return 2.0; }});
  xp::ExecOptions opt;
  opt.jobs = 1;
  EXPECT_THROW(xp::run_jobs(jobs, opt), tpio::Error);
}

TEST(Executor, JobExceptionPropagates) {
  std::vector<xp::SweepJob> jobs = square_jobs(6, nullptr);
  jobs[3].run = []() -> double { throw std::runtime_error("boom"); };
  for (int workers : {1, 4}) {
    xp::ExecOptions opt;
    opt.jobs = workers;
    EXPECT_THROW(xp::run_jobs(jobs, opt), std::runtime_error)
        << "workers=" << workers;
  }
}

TEST(Executor, CheckpointRoundTripPreservesAwkwardKeys) {
  TempFile f("executor_ckpt_roundtrip.json");
  xp::Checkpoint cp;
  cp.manifest = "grid|with \"quotes\" and \\slashes\\";
  cp.grid = "3:deadbeefdeadbeef";
  cp.done["plain/key"] = 1.5;
  cp.done["tab\there"] = -2.25;
  cp.done["new\nline"] = 1e-9;
  xp::checkpoint_save(f.path, cp);

  xp::Checkpoint back;
  ASSERT_TRUE(xp::checkpoint_load(f.path, back));
  EXPECT_EQ(back.manifest, cp.manifest);
  EXPECT_EQ(back.grid, cp.grid);
  EXPECT_EQ(back.done, cp.done);
}

TEST(Executor, GridSignatureReflectsCountContentAndOrder) {
  const auto jobs3 = square_jobs(3, nullptr);
  const auto jobs4 = square_jobs(4, nullptr);
  EXPECT_EQ(xp::grid_signature(jobs3), xp::grid_signature(jobs3));
  EXPECT_NE(xp::grid_signature(jobs3), xp::grid_signature(jobs4));

  auto reordered = jobs3;
  std::swap(reordered[0], reordered[2]);
  EXPECT_NE(xp::grid_signature(jobs3), xp::grid_signature(reordered));

  auto renamed = jobs3;
  renamed[1].key = "job/other";
  EXPECT_NE(xp::grid_signature(jobs3), xp::grid_signature(renamed));
}

TEST(Executor, CheckpointLoadRejectsMissingAndGarbage) {
  xp::Checkpoint cp;
  EXPECT_FALSE(xp::checkpoint_load("/nonexistent/dir/ckpt.json", cp));

  TempFile f("executor_ckpt_garbage.json");
  std::FILE* out = std::fopen(f.path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("this is not a checkpoint", out);
  std::fclose(out);
  EXPECT_FALSE(xp::checkpoint_load(f.path, cp));
}

TEST(Executor, ResumeSkipsCompletedJobs) {
  TempFile f("executor_ckpt_resume.json");
  xp::Checkpoint cp;
  cp.manifest = "grid-A";
  cp.grid = xp::grid_signature(square_jobs(5, nullptr));
  cp.done["job/0"] = 1000.0;  // deliberately NOT 0*0: proves it was merged
  cp.done["job/2"] = 2000.0;
  xp::checkpoint_save(f.path, cp);

  std::atomic<int> executed{0};
  xp::ExecOptions opt;
  opt.jobs = 2;
  opt.checkpoint = f.path;
  opt.manifest = "grid-A";
  const auto results = xp::run_jobs(square_jobs(5, &executed), opt);
  EXPECT_EQ(executed.load(), 3);  // jobs 1, 3, 4
  EXPECT_EQ(results[0], 1000.0);
  EXPECT_EQ(results[1], 1.0);
  EXPECT_EQ(results[2], 2000.0);
  EXPECT_EQ(results[3], 9.0);
  EXPECT_EQ(results[4], 16.0);
}

TEST(Executor, MismatchedManifestIsRefused) {
  TempFile f("executor_ckpt_mismatch.json");
  xp::Checkpoint cp;
  cp.manifest = "grid-B";  // a different sweep's leftovers
  cp.grid = xp::grid_signature(square_jobs(3, nullptr));
  cp.done["job/0"] = 1000.0;
  xp::checkpoint_save(f.path, cp);

  std::atomic<int> executed{0};
  xp::ExecOptions opt;
  opt.jobs = 1;
  opt.checkpoint = f.path;
  opt.manifest = "grid-A";
  try {
    xp::run_jobs(square_jobs(3, &executed), opt);
    FAIL() << "stale checkpoint must be refused";
  } catch (const tpio::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("grid-B"), std::string::npos) << what;
    EXPECT_NE(what.find("grid-A"), std::string::npos) << what;
  }
  EXPECT_EQ(executed.load(), 0);  // refused before running anything

  // The stale file is left for the user to inspect, not clobbered.
  xp::Checkpoint back;
  ASSERT_TRUE(xp::checkpoint_load(f.path, back));
  EXPECT_EQ(back.manifest, "grid-B");
  EXPECT_EQ(back.done.size(), 1u);
}

TEST(Executor, MismatchedGridIsRefused) {
  TempFile f("executor_ckpt_gridmismatch.json");
  // Same manifest string, but the file was written against a 4-job grid —
  // e.g. the case list or mode set changed without the manifest noticing.
  xp::ExecOptions opt;
  opt.jobs = 1;
  opt.checkpoint = f.path;
  opt.manifest = "grid-A";
  xp::run_jobs(square_jobs(4, nullptr), opt);

  std::atomic<int> executed{0};
  EXPECT_THROW(xp::run_jobs(square_jobs(3, &executed), opt), tpio::Error);
  EXPECT_EQ(executed.load(), 0);
}

TEST(Executor, UnparseableCheckpointIsOverwritten) {
  TempFile f("executor_ckpt_unparseable.json");
  std::FILE* out = std::fopen(f.path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("not a checkpoint at all", out);
  std::fclose(out);

  std::atomic<int> executed{0};
  xp::ExecOptions opt;
  opt.jobs = 1;
  opt.checkpoint = f.path;
  opt.manifest = "grid-A";
  const auto results = xp::run_jobs(square_jobs(3, &executed), opt);
  EXPECT_EQ(executed.load(), 3);
  EXPECT_EQ(results[2], 4.0);

  xp::Checkpoint back;
  ASSERT_TRUE(xp::checkpoint_load(f.path, back));
  EXPECT_EQ(back.manifest, "grid-A");
  EXPECT_EQ(back.done.size(), 3u);
}

TEST(Executor, CheckpointWrittenAsJobsComplete) {
  TempFile f("executor_ckpt_written.json");
  xp::ExecOptions opt;
  opt.jobs = 4;
  opt.checkpoint = f.path;
  opt.manifest = "grid-C";
  xp::run_jobs(square_jobs(7, nullptr), opt);

  xp::Checkpoint back;
  ASSERT_TRUE(xp::checkpoint_load(f.path, back));
  EXPECT_EQ(back.manifest, "grid-C");
  ASSERT_EQ(back.done.size(), 7u);
  EXPECT_EQ(back.done.at("job/6"), 36.0);

  // A rerun restores everything from the file and executes nothing.
  std::atomic<int> executed{0};
  const auto results = xp::run_jobs(square_jobs(7, &executed), opt);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(results[5], 25.0);
}

TEST(Executor, PartialResultsCheckpointedOnFailure) {
  TempFile f("executor_ckpt_partial.json");
  std::vector<xp::SweepJob> jobs = square_jobs(4, nullptr);
  jobs[1].run = []() -> double { throw std::runtime_error("boom"); };
  xp::ExecOptions opt;
  opt.jobs = 1;  // serial: job 0 completes before job 1 throws
  opt.checkpoint = f.path;
  opt.manifest = "grid-D";
  EXPECT_THROW(xp::run_jobs(jobs, opt), std::runtime_error);

  xp::Checkpoint back;
  ASSERT_TRUE(xp::checkpoint_load(f.path, back));
  EXPECT_EQ(back.manifest, "grid-D");
  EXPECT_EQ(back.done.count("job/0"), 1u);
  EXPECT_EQ(back.done.count("job/1"), 0u);
}
