// Differential isolation suite for the multi-tenant shared-PFS layer:
// a single tenant on the shared path must be bit-identical field-by-field
// to the solo runner across every scheduler, transfer primitive,
// hierarchical mode and fault scenario; N-tenant runs must be bit-identical
// across repeated executions, conductor backends, and executor worker
// counts; and delayed arrivals must shift completion without touching
// turnaround (the RunResult::bandwidth() arrival fix).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "sched/conductor.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

/// Every RunResult field (verify_error included — both paths verify).
std::string fp(const xp::RunResult& r) {
  std::string s;
  auto add = [&](auto v) {
    s += std::to_string(v);
    s += '|';
  };
  auto add_timings = [&](const coll::PhaseTimings& t) {
    add(t.meta);
    add(t.pack);
    add(t.gather);
    add(t.forward);
    add(t.shuffle);
    add(t.sync);
    add(t.write);
    add(t.backoff);
    add(t.total);
  };
  add(r.arrival);
  add(r.completion);
  add(r.makespan);
  add_timings(r.rank_sum);
  add_timings(r.agg_sum);
  add_timings(r.agg_max);
  add(r.aggregators);
  add(r.cycles);
  add(r.bytes);
  add(r.inter_node_bytes);
  add(r.inter_node_messages);
  add(r.intra_node_bytes);
  add(r.pipelined_overlap);
  add(r.autotune.engaged);
  add(static_cast<int>(r.autotune.chosen));
  add(r.autotune.from_cache);
  add(r.autotune.probe_cycles);
  add(r.faults.retries);
  add(r.faults.giveups);
  add(r.faults.degraded_cycles);
  s += r.io_error;
  s += '|';
  s += r.verify_error;
  s += '|';
  return s;
}

std::string fp_multi(const xp::MultiRunResult& r) {
  std::string s = std::to_string(r.makespan) + "#";
  for (const xp::TenantResult& t : r.tenants) {
    s += fp(t.run);
    s += std::to_string(t.qos.requests) + "|" + std::to_string(t.qos.busy) +
         "|" + std::to_string(t.qos.cross_wait) + "|" +
         std::to_string(t.qos.peak_active) + "#";
  }
  return s;
}

xp::RunSpec base_spec(wl::Spec w, int procs) {
  xp::RunSpec s;
  s.platform = xp::scaled(xp::ibex());
  s.workload = std::move(w);
  s.nprocs = procs;
  s.options.cb_size = xp::kCbSize;
  s.seed = 17;
  s.verify = true;
  return s;
}

/// Wrap one solo spec as a single-tenant multi-run with the same seed.
xp::MultiRunSpec as_multi(const xp::RunSpec& spec) {
  xp::MultiRunSpec m;
  m.tenants.push_back(spec);
  m.seed = spec.seed;
  return m;
}

/// A lone tenant on the shared-system path must replay the solo runner's
/// schedule bit-for-bit: same noise-stream derivation, FIFO service queue
/// == bare timeline, fabric view at offset 0 == standalone fabric,
/// single-group conductor == historical conductor.
void expect_lone_tenant_identity(const xp::RunSpec& spec,
                                 const std::string& label) {
  const xp::RunResult solo = xp::execute(spec);
  const xp::MultiRunResult multi = xp::execute_multi(as_multi(spec));
  ASSERT_EQ(multi.tenants.size(), 1u) << label;
  EXPECT_EQ(fp(solo), fp(multi.tenants[0].run)) << label;
  EXPECT_EQ(multi.makespan, solo.completion) << label;
}

TEST(LoneTenant, BitIdenticalAcrossSchedulersAndPrimitives) {
  const std::vector<coll::OverlapMode> modes = {
      coll::OverlapMode::None, coll::OverlapMode::Comm,
      coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
      coll::OverlapMode::WriteComm2};
  const std::vector<coll::Transfer> prims = {coll::Transfer::TwoSided,
                                             coll::Transfer::OneSidedFence,
                                             coll::Transfer::OneSidedLock};
  for (coll::OverlapMode m : modes) {
    for (coll::Transfer t : prims) {
      xp::RunSpec s = base_spec(wl::make_ior(1u << 19), 16);
      s.options.overlap = m;
      s.options.transfer = t;
      expect_lone_tenant_identity(
          s, std::string(coll::to_string(m)) + "/" + coll::to_string(t));
    }
  }
}

TEST(LoneTenant, BitIdenticalHierarchical) {
  for (bool hier : {false, true}) {
    xp::RunSpec s = base_spec(wl::make_tile256(2, 256), 16);
    s.options.overlap = coll::OverlapMode::WriteComm2;
    s.options.hierarchical = hier;
    expect_lone_tenant_identity(s, hier ? "hier" : "flat");
  }
}

TEST(LoneTenant, BitIdenticalUnderFaults) {
  xp::RunSpec s = base_spec(wl::make_flash(8, 2, 16 * 1024), 16);
  s.options.overlap = coll::OverlapMode::Write;
  s.platform.pfs.faults.write_fail_rate = 0.3;
  s.platform.pfs.faults.seed = 99;
  expect_lone_tenant_identity(s, "faults");
}

TEST(LoneTenant, BitIdenticalWithStragglersAndNoise) {
  xp::RunSpec s = base_spec(wl::make_ior(1u << 19), 16);
  s.options.overlap = coll::OverlapMode::WriteComm;
  s.platform.pfs.noise_sigma = 0.05;
  s.platform.fabric.noise_sigma = 0.05;
  s.platform.pfs.faults.straggler_factor = 3.0;
  s.platform.pfs.faults.straggler_targets = 2;
  expect_lone_tenant_identity(s, "stragglers+noise");
}

// ---------------------------------------------------------------------------
// Satellite 3 regression: arrival-aware makespan/bandwidth.
// ---------------------------------------------------------------------------

TEST(Arrival, DelayedLoneTenantShiftsCompletionNotTurnaround) {
  xp::RunSpec s = base_spec(wl::make_ior(1u << 19), 16);
  s.options.overlap = coll::OverlapMode::WriteComm2;
  const xp::RunResult solo = xp::execute(s);

  const sim::Duration delay = sim::microseconds(12345);
  xp::MultiRunSpec m = as_multi(s);
  m.arrival.model = xp::ArrivalModel::Trace;
  m.arrival.trace = {delay};
  const xp::MultiRunResult r = xp::execute_multi(m);
  const xp::RunResult& t = r.tenants[0].run;

  // Every timeline of the shared system is idle before the arrival, so the
  // whole schedule translates rigidly: completion shifts by exactly the
  // delay, turnaround and bandwidth are invariant. Before the arrival fix
  // makespan (and thus bandwidth) silently absorbed the idle lead-in.
  EXPECT_EQ(t.arrival, delay);
  EXPECT_EQ(t.completion, solo.completion + delay);
  EXPECT_EQ(t.makespan, solo.makespan);
  EXPECT_DOUBLE_EQ(t.bandwidth(), solo.bandwidth());
}

TEST(Arrival, ModelsAreDeterministicAndOrdered) {
  xp::ArrivalSpec fixed;
  fixed.model = xp::ArrivalModel::Fixed;
  fixed.gap = 1000;
  EXPECT_EQ(xp::arrival_times(fixed, 3, 7),
            (std::vector<sim::Time>{0, 1000, 2000}));

  xp::ArrivalSpec poisson;
  poisson.model = xp::ArrivalModel::Poisson;
  poisson.gap = 1000;
  const auto a = xp::arrival_times(poisson, 8, 42);
  const auto b = xp::arrival_times(poisson, 8, 42);
  EXPECT_EQ(a, b);  // pure function of (spec, seed)
  EXPECT_EQ(a[0], 0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const auto c = xp::arrival_times(poisson, 8, 43);
  EXPECT_NE(a, c);  // seed actually matters
}

// ---------------------------------------------------------------------------
// N-tenant determinism.
// ---------------------------------------------------------------------------

xp::MultiRunSpec three_tenants() {
  xp::MultiRunSpec m;
  xp::RunSpec a = base_spec(wl::make_ior(1u << 19), 16);
  a.options.overlap = coll::OverlapMode::WriteComm2;
  xp::RunSpec b = base_spec(wl::make_tile256(2, 256), 8);
  b.options.overlap = coll::OverlapMode::None;
  xp::RunSpec c = base_spec(wl::make_flash(8, 2, 16 * 1024), 16);
  c.options.overlap = coll::OverlapMode::Write;
  m.tenants = {a, b, c};
  m.arrival.model = xp::ArrivalModel::Fixed;
  m.arrival.gap = sim::microseconds(500);
  m.seed = 23;
  return m;
}

TEST(MultiTenant, RepeatedRunsBitIdentical) {
  for (pfs::QosPolicy q : {pfs::QosPolicy::Fifo, pfs::QosPolicy::FairShare,
                           pfs::QosPolicy::Priority}) {
    xp::MultiRunSpec m = three_tenants();
    m.qos = q;
    if (q == pfs::QosPolicy::Priority) m.priorities = {1, 0, 2};
    const std::string x = fp_multi(xp::execute_multi(m));
    const std::string y = fp_multi(xp::execute_multi(m));
    EXPECT_EQ(x, y) << pfs::to_string(q);
  }
}

TEST(MultiTenant, BackendsBitIdentical) {
  const xp::MultiRunSpec m = three_tenants();
  const sim::ConductorBackend orig = sim::Conductor::default_backend();
  sim::Conductor::set_default_backend(sim::ConductorBackend::Fibers);
  const std::string fibers = fp_multi(xp::execute_multi(m));
  sim::Conductor::set_default_backend(sim::ConductorBackend::Threads);
  const std::string threads = fp_multi(xp::execute_multi(m));
  sim::Conductor::set_default_backend(orig);
  EXPECT_EQ(fibers, threads);
}

TEST(MultiTenant, EveryTenantVerifiesAndConservesBytes) {
  xp::MultiRunSpec m = three_tenants();
  m.store_content = true;
  const xp::MultiRunResult r = xp::execute_multi(m);
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const xp::RunResult& run = r.tenants[t].run;
    EXPECT_EQ(run.verify_error, "") << "tenant " << t;
    EXPECT_GT(run.bytes, 0u) << "tenant " << t;
    EXPECT_GT(r.tenants[t].qos.requests, 0u) << "tenant " << t;
  }
}

TEST(MultiTenant, SlowdownBaselinesComputed) {
  xp::MultiRunSpec m = three_tenants();
  const xp::MultiRunResult r = xp::execute_multi(m, /*with_baselines=*/true);
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    // Sharing a system can only delay a job (FIFO work conservation);
    // allow exact equality for tenants that never collide.
    EXPECT_GE(r.tenants[t].slowdown, 1.0) << "tenant " << t;
  }
}

// ---------------------------------------------------------------------------
// Contended sweep: executor-level determinism (jobs 1 vs 8).
// ---------------------------------------------------------------------------

std::string sweep_fp(const std::vector<xp::OverlapSeries>& rows) {
  std::string s;
  for (const auto& row : rows) {
    s += std::string(wl::to_string(row.kind)) + row.size_label +
         std::to_string(row.procs);
    for (const auto& [mode, ms] : row.min_ms) {
      s += std::string(coll::to_string(mode)) + "=" + std::to_string(ms) + ";";
    }
    s += "#";
  }
  return s;
}

TEST(ContendedSweep, TablesBitIdenticalAcrossWorkerCounts) {
  xp::ContentionConfig cfg;
  cfg.neighbors = 1;
  cfg.arrival.model = xp::ArrivalModel::Fixed;
  cfg.arrival.gap = 0;
  cfg.qos = pfs::QosPolicy::Fifo;

  xp::ExecOptions serial;
  serial.jobs = 1;
  xp::ExecOptions parallel;
  parallel.jobs = 8;
  const auto a = xp::run_contended_sweep(xp::ibex(), coll::Options{}, cfg,
                                         /*reps=*/1, /*seed=*/5,
                                         /*quick=*/true, serial);
  const auto b = xp::run_contended_sweep(xp::ibex(), coll::Options{}, cfg,
                                         /*reps=*/1, /*seed=*/5,
                                         /*quick=*/true, parallel);
  EXPECT_EQ(sweep_fp(a), sweep_fp(b));
}

}  // namespace
