// Subfiling (Options::sub_comm_count > 1) behaviour suite: partition and
// sub-view geometry units, edge geometries (k not dividing P, k == P
// file-per-rank, single-node subgroups under the hierarchical shuffle),
// composition with fault injection and multi-tenant contention, the pure
// auto-k decision functions, and cross-backend determinism. The k == 1
// bit-identity contract lives in subfiling_diff_test.cpp.
//
// Registered under the `subfiling` ctest label (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/autotune.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "net/topology.hpp"
#include "sched/conductor.hpp"
#include "simbase/error.hpp"

namespace coll = tpio::coll;
namespace net = tpio::net;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

class BackendGuard {
 public:
  explicit BackendGuard(sim::ConductorBackend b)
      : prev_(sim::Conductor::default_backend()) {
    sim::Conductor::set_default_backend(b);
  }
  ~BackendGuard() { sim::Conductor::set_default_backend(prev_); }

 private:
  sim::ConductorBackend prev_;
};

xp::RunSpec base_spec(wl::Spec w, int procs) {
  xp::RunSpec s;
  s.platform = xp::scaled(xp::ibex());
  s.workload = std::move(w);
  s.nprocs = procs;
  s.options.cb_size = xp::kCbSize;
  s.seed = 0x5F11;
  s.verify = true;
  return s;
}

/// Full-schedule fingerprint of a subfiled run, subfile table included.
std::string fp(const xp::RunResult& r) {
  std::string s = std::to_string(r.completion) + "|" +
                  std::to_string(r.makespan) + "|" +
                  std::to_string(r.bytes) + "|" +
                  std::to_string(r.aggregators) + "|" +
                  std::to_string(r.cycles) + "|" +
                  std::to_string(r.inter_node_bytes) + "|" +
                  std::to_string(r.inter_node_messages) + "|" +
                  std::to_string(r.rank_sum.total) + "|" + r.io_error + "|" +
                  r.verify_error + "#";
  for (const xp::SubfileResult& f : r.subfiles) {
    s += std::to_string(f.group) + "," + std::to_string(f.ranks) + "," +
         std::to_string(f.aggregators) + "," + std::to_string(f.bytes) + "," +
         std::to_string(f.completion) + ";";
  }
  return s;
}

/// Structural invariants every subfiled result must satisfy.
void expect_valid_subfiled(const xp::RunResult& r, int nprocs, int k,
                           const std::string& what) {
  EXPECT_EQ(r.verify_error, "") << what;
  EXPECT_EQ(r.io_error, "") << what;
  ASSERT_EQ(r.subfiles.size(), static_cast<std::size_t>(k)) << what;
  int ranks = 0, aggs = 0;
  std::uint64_t bytes = 0;
  for (int g = 0; g < k; ++g) {
    const xp::SubfileResult& f = r.subfiles[static_cast<std::size_t>(g)];
    EXPECT_EQ(f.group, g) << what;
    EXPECT_GE(f.ranks, 1) << what;
    EXPECT_GE(f.aggregators, 1) << what;
    EXPECT_LE(f.completion, r.completion) << what;
    ranks += f.ranks;
    aggs += f.aggregators;
    bytes += f.bytes;
  }
  EXPECT_EQ(ranks, nprocs) << what;
  EXPECT_EQ(aggs, r.aggregators) << what;
  EXPECT_EQ(bytes, r.bytes) << what;
}

}  // namespace

// ---------------------------------------------------------------------------
// Geometry units
// ---------------------------------------------------------------------------

TEST(SubCommPartition, BlockSplitShapes) {
  // k | P: equal blocks.
  const auto even = xp::sub_comm_partition(12, 4);
  ASSERT_EQ(even.size(), 4u);
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(even[static_cast<std::size_t>(g)].first, g * 3);
    EXPECT_EQ(even[static_cast<std::size_t>(g)].second, 3);
  }
  // k not dividing P: first P%k groups take the extra rank, contiguous.
  const auto uneven = xp::sub_comm_partition(10, 3);
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[0], (std::pair{0, 4}));
  EXPECT_EQ(uneven[1], (std::pair{4, 3}));
  EXPECT_EQ(uneven[2], (std::pair{7, 3}));
  // k == P: one rank per group. k == 1: the whole world.
  const auto per_rank = xp::sub_comm_partition(5, 5);
  for (int g = 0; g < 5; ++g) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(g)], (std::pair{g, 1}));
  }
  EXPECT_EQ(xp::sub_comm_partition(7, 1), (std::vector{std::pair{0, 7}}));
  EXPECT_THROW(xp::sub_comm_partition(4, 5), tpio::Error);
  EXPECT_THROW(xp::sub_comm_partition(4, 0), tpio::Error);
}

TEST(SubCommPartition, CoversEveryRankExactlyOnce) {
  for (int P : {1, 2, 7, 16, 100}) {
    for (int k = 1; k <= P; ++k) {
      const auto part = xp::sub_comm_partition(P, k);
      ASSERT_EQ(part.size(), static_cast<std::size_t>(k));
      int next = 0;
      for (const auto& [base, count] : part) {
        EXPECT_EQ(base, next);
        EXPECT_GE(count, 1);
        next += count;
      }
      EXPECT_EQ(next, P);
    }
  }
}

TEST(TopologySubView, MidNodeSplitKeepsPhysicalSlots) {
  // World: 3 nodes x 4 ppn. A subgroup carved mid-node must keep each
  // member on its physical node: sub.node_of(r) maps to the same node
  // (relative to the subgroup's first node) as world.node_of(base + r).
  const net::Topology world{3, 4};
  for (int base = 0; base < 12; ++base) {
    for (int count = 1; base + count <= 12; ++count) {
      const net::Topology sub = net::Topology::sub_view(world, base, count);
      EXPECT_EQ(sub.nprocs(), count);
      const int first_node = world.node_of(base);
      for (int r = 0; r < count; ++r) {
        EXPECT_EQ(sub.node_of(r) + first_node, world.node_of(base + r))
            << "base=" << base << " count=" << count << " r=" << r;
      }
    }
  }
  // Whole-world view reduces to the historical block mapping.
  const net::Topology all = net::Topology::sub_view(world, 0, 12);
  EXPECT_EQ(all.rank_offset, 0);
  EXPECT_EQ(all.nodes, 3);
}

TEST(AutoK, CandidatesArePowersOfTwoCappedByGeometry) {
  EXPECT_EQ(coll::sub_comm_candidates(net::Topology{8, 4}, 16),
            (std::vector{1, 2, 4, 8}));
  // Single node or single target: nothing to split over.
  EXPECT_EQ(coll::sub_comm_candidates(net::Topology{1, 48}, 16),
            (std::vector{1}));
  EXPECT_EQ(coll::sub_comm_candidates(net::Topology{8, 4}, 1),
            (std::vector{1}));
  // Target count binds below the node count.
  EXPECT_EQ(coll::sub_comm_candidates(net::Topology{16, 2}, 4),
            (std::vector{1, 2, 4}));
  // Cap at 8 regardless of geometry.
  EXPECT_EQ(coll::sub_comm_candidates(net::Topology{64, 1}, 64),
            (std::vector{1, 2, 4, 8}));
}

TEST(AutoK, DecideAcceptsOnlyMeasuredImprovement) {
  // Shared file only.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0}, 0.02), 1);
  // k=2 wins by more than the floor.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 97.0}, 0.02), 2);
  // Near-tie stays with the shared file.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 99.0}, 0.02), 1);
  // Doubling continues while each step beats the accepted probe.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 80.0, 70.0, 69.0}, 0.02), 4);
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 80.0, 70.0, 50.0}, 0.02), 8);
  // First regression ends the search even when a later probe dips.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 90.0, 95.0, 50.0}, 0.02), 2);
  // Zero floor accepts any strict improvement.
  EXPECT_EQ(coll::decide_sub_comm_count({100.0, 99.9}, 0.0), 2);
  EXPECT_THROW(coll::decide_sub_comm_count({}, 0.02), tpio::Error);
  EXPECT_THROW(coll::decide_sub_comm_count({100.0, -1.0}, 0.02), tpio::Error);
}

TEST(AutoK, HarnessResolutionIsDeterministic) {
  xp::RunSpec spec = base_spec(wl::make_tile256(2, 256), 16);
  spec.options.sub_comm_count = 0;
  const int k1 = xp::auto_sub_comm_count(spec);
  const int k2 = xp::auto_sub_comm_count(spec);
  EXPECT_GE(k1, 1);
  EXPECT_EQ(k1, k2);
  // execute() refuses unresolved auto.
  EXPECT_THROW(xp::execute(spec), tpio::Error);
}

// ---------------------------------------------------------------------------
// Edge geometries (all verified byte-exact)
// ---------------------------------------------------------------------------

TEST(Subfiling, UnevenPartitionVerifies) {
  // k does not divide P: subgroup sizes 3,3,3,3,2 — and the interleaved
  // tile workload forces the subfile offset compaction (each subgroup's
  // file-region union has gaps the engine never writes).
  xp::RunSpec spec = base_spec(wl::make_tile256(2, 256), 14);
  spec.options.sub_comm_count = 5;
  expect_valid_subfiled(xp::execute(spec), 14, 5, "P=14 k=5");
}

TEST(Subfiling, FilePerRank) {
  // k == P: every rank is its own sub-communicator, aggregator and file.
  xp::RunSpec spec = base_spec(wl::make_ior(1u << 18), 8);
  spec.options.sub_comm_count = 8;
  const xp::RunResult r = xp::execute(spec);
  expect_valid_subfiled(r, 8, 8, "file-per-rank");
  for (const xp::SubfileResult& f : r.subfiles) {
    EXPECT_EQ(f.ranks, 1);
    EXPECT_EQ(f.aggregators, 1);
  }
}

TEST(Subfiling, MidNodeSubgroupsHierarchical) {
  // scaled(ibex) has ppn = 10, so P=20 and k=4 carve 5-rank subgroups that
  // straddle node boundaries mid-node; the hierarchical shuffle must elect
  // node leaders within each sub-view's physical slots.
  for (bool hier : {false, true}) {
    xp::RunSpec spec = base_spec(wl::make_tile1m(1, 1), 20);
    spec.options.sub_comm_count = 4;
    spec.options.hierarchical = hier;
    expect_valid_subfiled(xp::execute(spec), 20, 4,
                          hier ? "mid-node hier" : "mid-node flat");
  }
}

TEST(Subfiling, AllSchedulersAndPrimitivesVerify) {
  for (int m = 0; m < 5; ++m) {
    for (int t = 0; t < 3; ++t) {
      xp::RunSpec spec = base_spec(wl::make_tile256(2, 256), 16);
      spec.options.sub_comm_count = 2;
      spec.options.overlap = static_cast<coll::OverlapMode>(m);
      spec.options.transfer = static_cast<coll::Transfer>(t);
      expect_valid_subfiled(
          xp::execute(spec), 16, 2,
          std::string(coll::to_string(spec.options.overlap)) + "/" +
              coll::to_string(spec.options.transfer));
    }
  }
}

TEST(Subfiling, StripeOverridesVerify) {
  // Per-subfile stripe unit/factor sweepable without breaking contents.
  for (std::uint64_t unit : {std::uint64_t{1} << 20, std::uint64_t{4} << 20}) {
    xp::RunSpec spec = base_spec(wl::make_tile256(2, 256), 16);
    spec.options.sub_comm_count = 2;
    spec.options.subfile_stripe_unit = unit;
    spec.options.subfile_stripe_factor = 4;
    expect_valid_subfiled(xp::execute(spec), 16, 2,
                          "unit=" + std::to_string(unit));
  }
}

// ---------------------------------------------------------------------------
// Composition and determinism
// ---------------------------------------------------------------------------

TEST(Subfiling, ComposesWithFaults) {
  xp::RunSpec spec = base_spec(wl::make_ior(1u << 19), 16);
  spec.options.sub_comm_count = 4;
  // Deterministic schedule: the first attempt of every write op fails, so
  // each subgroup's engine must retry regardless of how few ops it issues.
  spec.platform.pfs.faults.fail_until_attempt = 2;
  spec.platform.pfs.faults.seed = 0xFA17;
  const xp::RunResult a = xp::execute(spec);
  expect_valid_subfiled(a, 16, 4, "faulty");
  EXPECT_GT(a.faults.retries, 0);
  EXPECT_EQ(a.faults.giveups, 0);
  // The fault scenario is deterministic per subgroup: identical reruns.
  EXPECT_EQ(fp(a), fp(xp::execute(spec)));
}

TEST(Subfiling, ComposesWithContention) {
  // Two subfiled tenants sharing the PFS: both verify byte-exact and the
  // run is deterministic.
  xp::MultiRunSpec m;
  for (int t = 0; t < 2; ++t) {
    xp::RunSpec s = base_spec(wl::make_tile256(2, 256), 12);
    s.options.sub_comm_count = 3;
    m.tenants.push_back(s);
  }
  m.arrival.model = xp::ArrivalModel::Fixed;
  m.arrival.gap = sim::Duration{1'000'000};
  m.seed = 0xC057;
  const xp::MultiRunResult a = xp::execute_multi(m);
  ASSERT_EQ(a.tenants.size(), 2u);
  for (const xp::TenantResult& t : a.tenants) {
    expect_valid_subfiled(t.run, 12, 3, "contended tenant");
  }
  const xp::MultiRunResult b = xp::execute_multi(m);
  EXPECT_EQ(fp(a.tenants[0].run), fp(b.tenants[0].run));
  EXPECT_EQ(fp(a.tenants[1].run), fp(b.tenants[1].run));
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Subfiling, DeterministicAcrossBackends) {
  std::vector<std::string> prints;
  for (sim::ConductorBackend b :
       {sim::ConductorBackend::Fibers, sim::ConductorBackend::Threads}) {
    BackendGuard guard(b);
    xp::RunSpec spec = base_spec(wl::make_tile1m(1, 1), 15);
    spec.options.sub_comm_count = 3;
    spec.options.overlap = coll::OverlapMode::WriteComm2;
    prints.push_back(fp(xp::execute(spec)));
  }
  EXPECT_EQ(prints[0], prints[1]);
}

TEST(Subfiling, SubfiledSweepIdenticalAcrossJobs) {
  // The sweep layer (checkpoints namespaced by subfiling_tag) must stay
  // bit-identical at any worker count with k > 1.
  std::vector<std::vector<xp::OverlapSeries>> tables;
  for (int jobs : {1, 8}) {
    xp::ExecOptions exec;
    exec.jobs = jobs;
    coll::Options base;
    base.sub_comm_count = 2;
    tables.push_back(
        xp::run_overlap_sweep(xp::ibex(), base, 1, 0x57AB, true, exec));
  }
  ASSERT_EQ(tables[0].size(), tables[1].size());
  for (std::size_t i = 0; i < tables[0].size(); ++i) {
    EXPECT_EQ(tables[0][i].min_ms, tables[1][i].min_ms) << "series " << i;
  }
}

TEST(Subfiling, TagNamespacesCheckpoints) {
  coll::Options opt;
  EXPECT_EQ(xp::subfiling_tag(opt), "");
  opt.sub_comm_count = 4;
  EXPECT_NE(xp::subfiling_tag(opt), "");
  coll::Options striped;
  striped.subfile_stripe_unit = 1 << 20;
  EXPECT_NE(xp::subfiling_tag(striped), "");
  EXPECT_NE(xp::subfiling_tag(striped), xp::subfiling_tag(opt));
}
