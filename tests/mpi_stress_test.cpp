// Stress and property tests of the simulated MPI layer: chaotic traffic
// patterns must stay deterministic, deliver every byte correctly, and
// never deadlock.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "simbase/rng.hpp"
#include "simbase/units.hpp"

namespace smpi = tpio::smpi;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

struct Rig {
  net::Topology topo;
  net::Fabric fabric;
  sim::Conductor conductor;
  smpi::Machine machine;

  explicit Rig(int nodes, int ppn, smpi::MpiParams mp = {})
      : topo{nodes, ppn},
        fabric(topo, fabric_params()),
        conductor(topo.nprocs()),
        machine(fabric, mp) {}

  static net::FabricParams fabric_params() {
    net::FabricParams p;
    p.inter_bw = 2e9;
    p.intra_bw = 8e9;
    p.inter_latency = 1500;
    p.intra_latency = 300;
    return p;
  }

  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      prog(mpi);
    });
  }
};

std::vector<std::byte> payload(int src, int dst, int round, std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(src) * 7 +
                                   static_cast<std::size_t>(dst) * 3 +
                                   static_cast<std::size_t>(round)) &
                                  0xFF);
  }
  return v;
}

class MpiStress : public testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(MpiStress, RandomRingTrafficDeterministicAndCorrect) {
  // Every rank sends pseudo-random-sized messages around a ring for
  // several rounds; payloads verified, makespans identical across reruns.
  auto once = [&]() {
    Rig rig(4, 3);
    const int P = rig.topo.nprocs();
    rig.run([&](smpi::Mpi& mpi) {
      sim::Rng rng(sim::Rng::derive_seed(GetParam(),
                                         static_cast<std::uint64_t>(mpi.rank())));
      for (int round = 0; round < 6; ++round) {
        const int dst = (mpi.rank() + 1) % P;
        const int src = (mpi.rank() + P - 1) % P;
        // Mixed sizes straddling the eager limit.
        const std::size_t send_n = 64 + rng.next_below(1 << 20);
        std::vector<std::byte> in(2 << 20);
        smpi::Request r = mpi.irecv(src, round, in);
        mpi.ctx().advance(static_cast<sim::Duration>(rng.next_below(5000)));
        const auto out = payload(mpi.rank(), dst, round, send_n);
        mpi.send(dst, round, out);
        mpi.wait(r);
        // Verify the prefix that was actually sent. Deterministic sizes:
        // regenerate the sender's stream.
        sim::Rng peer(sim::Rng::derive_seed(GetParam(),
                                            static_cast<std::uint64_t>(src)));
        std::size_t expect_n = 0;
        for (int k = 0; k <= round; ++k) {
          expect_n = 64 + peer.next_below(1 << 20);
          (void)peer.next_below(5000);
        }
        const auto expect = payload(src, mpi.rank(), round, expect_n);
        ASSERT_EQ(0, std::memcmp(in.data(), expect.data(), expect_n));
      }
    });
    return rig.conductor.makespan();
  };
  EXPECT_EQ(once(), once());
}

TEST_P(MpiStress, AllToAllPairsComplete) {
  Rig rig(3, 3);
  const int P = rig.topo.nprocs();
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> inbox(
        static_cast<std::size_t>(P), std::vector<std::byte>(4096));
    std::vector<smpi::Request> reqs;
    for (int peer = 0; peer < P; ++peer) {
      if (peer == mpi.rank()) continue;
      reqs.push_back(mpi.irecv(peer, 1, inbox[static_cast<std::size_t>(peer)]));
    }
    for (int peer = 0; peer < P; ++peer) {
      if (peer == mpi.rank()) continue;
      reqs.push_back(mpi.isend(peer, 1, payload(mpi.rank(), peer, 0, 4096)));
    }
    mpi.waitall(reqs);
    for (int peer = 0; peer < P; ++peer) {
      if (peer == mpi.rank()) continue;
      EXPECT_EQ(inbox[static_cast<std::size_t>(peer)],
                payload(peer, mpi.rank(), 0, 4096));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiStress,
                         testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(MpiStressMisc, ManyCollectivesUnderP2PTraffic) {
  Rig rig(4, 2);
  rig.run([&](smpi::Mpi& mpi) {
    const int P = mpi.size();
    for (int round = 0; round < 12; ++round) {
      // Interleave a reduction with a shifting p2p exchange.
      const auto sum = mpi.allreduce_sum(static_cast<std::uint64_t>(mpi.rank()));
      EXPECT_EQ(sum, static_cast<std::uint64_t>(P * (P - 1) / 2));
      const int dst = (mpi.rank() + round + 1) % P;
      const int src = (mpi.rank() + P - ((round + 1) % P)) % P;
      std::vector<std::byte> in(512);
      smpi::Request r = mpi.irecv(src, 100 + round, in);
      mpi.send(dst, 100 + round, payload(mpi.rank(), dst, round, 512));
      mpi.wait(r);
      EXPECT_EQ(in, payload(src, mpi.rank(), round, 512));
    }
  });
}

TEST(MpiStressMisc, RmaEpochsInterleavedWithMessages) {
  Rig rig(4, 1);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 4096u : 0u);
    for (int epoch = 0; epoch < 8; ++epoch) {
      mpi.win_fence(*win);
      if (mpi.rank() != 0) {
        const auto data =
            payload(mpi.rank(), 0, epoch, 1024);
        mpi.put(*win, 0, static_cast<std::size_t>(mpi.rank() - 1) * 1024,
                data);
      }
      mpi.win_fence(*win);
      if (mpi.rank() == 0) {
        for (int origin = 1; origin < 4; ++origin) {
          const auto expect = payload(origin, 0, epoch, 1024);
          EXPECT_EQ(0, std::memcmp(win->local(0).data() +
                                       (static_cast<std::size_t>(origin - 1)) *
                                           1024,
                                   expect.data(), 1024))
              << "epoch " << epoch << " origin " << origin;
        }
      }
      // P2P chatter between epochs must not disturb window state.
      const int peer = mpi.rank() ^ 1;
      std::vector<std::byte> in(256);
      smpi::Request r = mpi.irecv(peer, 500 + epoch, in);
      mpi.send(peer, 500 + epoch, payload(mpi.rank(), peer, epoch, 256));
      mpi.wait(r);
    }
  });
}

TEST(MpiStressMisc, LargeRankCountBarrierStorm) {
  Rig rig(16, 8);  // 128 ranks
  rig.run([&](smpi::Mpi& mpi) {
    for (int i = 0; i < 10; ++i) {
      mpi.ctx().advance(static_cast<sim::Duration>((mpi.rank() * 37 + i) % 997));
      mpi.barrier();
    }
  });
  EXPECT_GT(rig.conductor.makespan(), 0);
}

TEST(MpiStressMisc, EagerFloodThenDrain) {
  // One receiver absorbs hundreds of unexpected messages, then drains the
  // queue in reverse tag order (worst case for queue scans).
  smpi::MpiParams mp;
  Rig rig(2, 1, mp);
  const int kMsgs = 200;
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        mpi.send(1, i, payload(0, 1, i, 128));
      }
    } else {
      mpi.ctx().advance(sim::milliseconds(5.0));
      for (int i = kMsgs - 1; i >= 0; --i) {
        std::vector<std::byte> in(128);
        mpi.recv(0, i, in);
        ASSERT_EQ(in, payload(0, 1, i, 128));
      }
    }
  });
}
