// FLASH-style adaptive-mesh checkpoint: every rank owns a set of mesh
// blocks with many physical variables; the checkpoint file is laid out
// variable-major (all ranks' slabs of variable 0, then variable 1, ...),
// which gives each rank one extent per variable — the Flash I/O pattern.
// The example writes one checkpoint with each shuffle data-transfer
// primitive and reports the phase breakdown per primitive.
//
//   ./build/examples/amr_checkpoint

#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "mpi/mpi.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/units.hpp"
#include "workloads/workloads.hpp"

namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;
namespace coll = tpio::coll;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

int main() {
  constexpr int kRanks = 32;
  // 24 variables (FLASH's unk array), 4 blocks per rank, 16 KiB per
  // block-variable slab: ~1.5 MiB per rank.
  const wl::Spec spec = wl::make_flash(24, 4, 16 * 1024);

  std::printf("AMR checkpoint demo: %d ranks, %s\n\n", kRanks,
              spec.describe().c_str());

  xp::Table table({"shuffle primitive", "time(ms)", "shuffle(ms)",
                   "gather(ms)", "sync(ms)", "pack(ms)", "write(ms)"});
  for (coll::Transfer transfer :
       {coll::Transfer::TwoSided, coll::Transfer::OneSidedFence,
        coll::Transfer::OneSidedLock}) {
    xp::Platform plat = xp::crill();
    xp::scale_geometry(plat, 8, 4);
    plat.procs_per_node = 12;
    const net::Topology topo = net::Topology::fit(kRanks, plat.procs_per_node);
    net::Fabric fabric(topo, plat.fabric);
    smpi::Machine machine(fabric, plat.mpi);
    pfs::StorageSystem storage(plat.pfs, &fabric);
    auto file = storage.create("flash_hdf5_chk_0001", pfs::Integrity::Digest);

    std::vector<coll::Result> results(static_cast<std::size_t>(topo.nprocs()));
    sim::Conductor conductor(topo.nprocs());
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      const coll::FileView view = spec.view(mpi.rank(), kRanks);
      const auto data = wl::fill_local(view);
      coll::Options opt;
      opt.cb_size = 4 * sim::MiB;
      opt.overlap = coll::OverlapMode::WriteComm2;
      opt.transfer = transfer;
      results[static_cast<std::size_t>(mpi.rank())] =
          coll::collective_write(mpi, *file, view, data, opt);
    });

    const std::string err = file->verify(wl::expected_byte);
    if (!err.empty()) {
      std::printf("verification FAILED (%s): %s\n", coll::to_string(transfer),
                  err.c_str());
      return 1;
    }
    coll::PhaseTimings agg;  // aggregator-side breakdown
    for (const auto& r : results) {
      if (r.timings.write > 0) agg += r.timings;
    }
    char t[32], sh[32], ga[32], sy[32], pk[32], wr[32];
    std::snprintf(t, sizeof(t), "%.2f", sim::to_millis(conductor.makespan()));
    std::snprintf(sh, sizeof(sh), "%.2f", sim::to_millis(agg.shuffle));
    std::snprintf(ga, sizeof(ga), "%.2f", sim::to_millis(agg.gather));
    std::snprintf(sy, sizeof(sy), "%.2f", sim::to_millis(agg.sync));
    std::snprintf(pk, sizeof(pk), "%.2f", sim::to_millis(agg.pack));
    std::snprintf(wr, sizeof(wr), "%.2f", sim::to_millis(agg.write));
    table.add_row({coll::to_string(transfer), t, sh, ga, sy, pk, wr});
  }
  table.print();
  std::puts("\n(aggregator-side sums; every checkpoint verified)");
  return 0;
}
