// Quickstart: the smallest complete collective write.
//
// Builds a simulated 4-node cluster (fabric + MPI + parallel file system),
// runs 16 ranks that each contribute one contiguous megabyte to a shared
// file through the two-phase engine with the Write-Comm-2 overlap
// scheduler, verifies the file byte-for-byte, and prints what happened.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/units.hpp"

namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;
namespace coll = tpio::coll;

namespace {

std::byte content(std::uint64_t file_offset) {
  return static_cast<std::byte>((file_offset * 37 + file_offset / 1000) & 0xFF);
}

}  // namespace

int main() {
  // --- the simulated cluster -------------------------------------------
  const net::Topology topo{/*nodes=*/4, /*procs_per_node=*/4};
  net::FabricParams fabric_params;  // InfiniBand-ish defaults
  net::Fabric fabric(topo, fabric_params);

  smpi::MpiParams mpi_params;  // eager/rendezvous at 512 KiB, etc.
  smpi::Machine machine(fabric, mpi_params);

  pfs::PfsParams pfs_params;  // 16 targets, 1 MiB stripes
  pfs::StorageSystem storage(pfs_params, &fabric);
  auto file = storage.create("quickstart.out", pfs::Integrity::Store);

  // --- the parallel job --------------------------------------------------
  const std::uint64_t block = 1 << 20;  // 1 MiB per rank
  std::vector<coll::Result> results(static_cast<std::size_t>(topo.nprocs()));

  sim::Conductor conductor(topo.nprocs());
  conductor.run([&](sim::RankCtx& ctx) {
    smpi::Mpi mpi(machine, ctx);

    // Rank r owns file range [r * block, (r+1) * block).
    coll::FileView view;
    view.extents.push_back(
        coll::Extent{static_cast<std::uint64_t>(mpi.rank()) * block, block});
    std::vector<std::byte> data(block);
    for (std::uint64_t i = 0; i < block; ++i) {
      data[i] = content(view.extents[0].offset + i);
    }

    coll::Options options;            // OMPIO-flavoured defaults
    options.cb_size = 4 * sim::MiB;   // collective buffer
    options.overlap = coll::OverlapMode::WriteComm2;
    options.transfer = coll::Transfer::TwoSided;

    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, options);
  });

  // --- results ------------------------------------------------------------
  const std::string err = file->verify(content);
  const coll::Result& r = results[0];
  std::printf("wrote %s through %d aggregators in %d cycles\n",
              sim::format_bytes(r.bytes_global).c_str(), r.aggregators,
              r.cycles);
  std::printf("virtual job time: %s (effective %s)\n",
              sim::format_time(conductor.makespan()).c_str(),
              sim::format_bandwidth(static_cast<double>(r.bytes_global) /
                                    sim::to_seconds(conductor.makespan()))
                  .c_str());
  std::printf("verification: %s\n", err.empty() ? "OK - every byte correct"
                                                : err.c_str());
  return err.empty() ? 0 : 1;
}
