// Exports a chrome://tracing timeline of one collective write, showing how
// the chosen overlap scheduler pipelines shuffle and file-access phases
// across the two collective sub-buffers. Open the output in
// chrome://tracing or https://ui.perfetto.dev.
//
//   ./build/examples/trace_timeline [none|comm|write|write-comm|write-comm-2]
//   -> writes trace_<mode>.json

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "workloads/workloads.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;

int main(int argc, char** argv) {
  const std::string mode_name = argc > 1 ? argv[1] : "write-comm-2";
  coll::OverlapMode mode = coll::OverlapMode::WriteComm2;
  if (mode_name == "none") mode = coll::OverlapMode::None;
  else if (mode_name == "comm") mode = coll::OverlapMode::Comm;
  else if (mode_name == "write") mode = coll::OverlapMode::Write;
  else if (mode_name == "write-comm") mode = coll::OverlapMode::WriteComm;
  else if (mode_name != "write-comm-2") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode_name.c_str());
    return 2;
  }

  const int procs = 16;
  const xp::Platform plat = xp::platform_by_name("ibex");
  const net::Topology topo = net::Topology::fit(procs, plat.procs_per_node);
  net::Fabric fabric(topo, plat.fabric);
  smpi::Machine machine(fabric, plat.mpi);
  pfs::StorageSystem storage(plat.pfs, &fabric);
  auto file = storage.create("trace.out", pfs::Integrity::None);
  const wl::Spec workload = wl::make_tile1m(1, 2);

  std::vector<coll::Trace> traces(static_cast<std::size_t>(procs));
  sim::Conductor conductor(procs);
  conductor.run([&](sim::RankCtx& ctx) {
    smpi::Mpi mpi(machine, ctx);
    const coll::FileView view = workload.view(mpi.rank(), procs);
    const auto data = wl::fill_local(view);
    coll::Options opt;
    opt.cb_size = xp::kCbSize;
    opt.overlap = mode;
    opt.trace = &traces[static_cast<std::size_t>(mpi.rank())];
    coll::collective_write(mpi, *file, view, data, opt);
  });

  const std::string out = "trace_" + mode_name + ".json";
  std::ofstream f(out);
  f << coll::Trace::chrome_document(traces);
  std::printf("job time %s; wrote %s (open in chrome://tracing)\n",
              sim::format_time(conductor.makespan()).c_str(), out.c_str());
  return 0;
}
