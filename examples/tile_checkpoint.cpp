// A 2-D simulation writing periodic checkpoints — the workload that
// motivates Tile I/O. A grid of ranks each owns a tile of a global 2-D
// field; every few "timesteps" the field is checkpointed to the parallel
// file system through the collective-write engine. The example compares
// the no-overlap baseline against the Write-Comm-2 scheduler across
// checkpoints and verifies every file.
//
//   ./build/examples/tile_checkpoint

#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "mpi/mpi.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/units.hpp"
#include "workloads/workloads.hpp"

namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;
namespace coll = tpio::coll;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

constexpr int kRanks = 36;          // 6 x 6 tile grid
constexpr int kCheckpoints = 3;
constexpr int kStepsBetween = 4;

/// One "timestep": halo exchange with the four neighbours plus compute.
void timestep(smpi::Mpi& mpi, int gx, int gy, std::uint64_t halo_bytes,
              sim::Duration compute) {
  const int tx = mpi.rank() % gx;
  const int ty = mpi.rank() / gx;
  std::vector<std::byte> halo(halo_bytes, std::byte{0x5A});
  std::vector<std::byte> incoming(halo_bytes);
  std::vector<smpi::Request> reqs;
  std::vector<std::vector<std::byte>> inbox;
  auto neighbour = [&](int nx, int ny) -> int {
    if (nx < 0 || ny < 0 || nx >= gx || ny >= gy) return -1;
    return ny * gx + nx;
  };
  for (auto [nx, ny] : {std::pair{tx - 1, ty}, {tx + 1, ty},
                        {tx, ty - 1}, {tx, ty + 1}}) {
    const int peer = neighbour(nx, ny);
    if (peer < 0) continue;
    inbox.emplace_back(halo_bytes);
    reqs.push_back(mpi.irecv(peer, 7, inbox.back()));
    reqs.push_back(mpi.isend(peer, 7, halo));
  }
  mpi.ctx().advance(compute);  // local stencil update
  mpi.waitall(reqs);
}

}  // namespace

int main() {
  const auto [gx, gy] = wl::grid_dims(kRanks);
  const wl::Spec field = wl::make_tile1m(1, 2);  // 2 MiB tile per rank

  std::printf("tile checkpoint demo: %dx%d ranks, %s per rank, %d "
              "checkpoints\n\n",
              gx, gy, sim::format_bytes(field.bytes_per_proc()).c_str(),
              kCheckpoints);

  xp::Table table({"scheduler", "job time(ms)", "checkpoint overhead"});
  double base_ms = 0;
  for (coll::OverlapMode mode :
       {coll::OverlapMode::None, coll::OverlapMode::WriteComm2}) {
    // Fresh cluster per variant (ibex-flavoured, scaled geometry).
    xp::Platform plat = xp::ibex();
    xp::scale_geometry(plat, 8, 4);
    plat.procs_per_node = 10;
    const net::Topology topo = net::Topology::fit(kRanks, plat.procs_per_node);
    net::Fabric fabric(topo, plat.fabric);
    smpi::Machine machine(fabric, plat.mpi);
    pfs::StorageSystem storage(plat.pfs, &fabric);

    std::vector<std::shared_ptr<pfs::File>> checkpoints;
    for (int c = 0; c < kCheckpoints; ++c) {
      checkpoints.push_back(storage.create("ckpt" + std::to_string(c),
                                           pfs::Integrity::Digest));
    }

    sim::Conductor conductor(topo.nprocs());
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      const coll::FileView view = field.view(mpi.rank(), kRanks);
      for (int c = 0; c < kCheckpoints; ++c) {
        for (int s = 0; s < kStepsBetween; ++s) {
          timestep(mpi, gx, gy, 16 * 1024, sim::microseconds(400));
        }
        const auto data = wl::fill_local(view);
        coll::Options opt;
        opt.cb_size = 4 * sim::MiB;
        opt.overlap = mode;
        coll::collective_write(mpi, *checkpoints[static_cast<std::size_t>(c)],
                               view, data, opt);
      }
    });

    for (const auto& f : checkpoints) {
      const std::string err = f->verify(wl::expected_byte);
      if (!err.empty()) {
        std::printf("checkpoint %s FAILED verification: %s\n",
                    f->name().c_str(), err.c_str());
        return 1;
      }
    }
    const double ms = sim::to_millis(conductor.makespan());
    if (mode == coll::OverlapMode::None) base_ms = ms;
    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.2f", ms);
    std::snprintf(b, sizeof(b), "%+.1f%%", (base_ms - ms) / base_ms * 100.0);
    table.add_row({coll::to_string(mode), a,
                   mode == coll::OverlapMode::None ? "--" : b});
  }
  table.print();
  std::puts("\nall checkpoints verified byte-for-byte");
  return 0;
}
