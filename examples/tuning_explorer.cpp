// Tuning explorer: given a workload shape and a cluster profile, sweep
// the collective-write tuning space (overlap scheduler x collective
// buffer size) and print the best configurations — the kind of study an
// I/O engineer runs before fixing MCA parameters for a production code.
//
//   ./build/examples/tuning_explorer [ior|tile256|tile1m|flash] [crill|ibex]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

int main(int argc, char** argv) {
  const std::string wname = argc > 1 ? argv[1] : "tile1m";
  const std::string pname = argc > 2 ? argv[2] : "ibex";

  wl::Spec workload;
  if (wname == "ior") workload = wl::make_ior(2ull << 20);
  else if (wname == "tile256") workload = wl::make_tile256(2, 1024);
  else if (wname == "tile1m") workload = wl::make_tile1m(1, 2);
  else if (wname == "flash") workload = wl::make_flash(24, 2, 16 * 1024);
  else {
    std::fprintf(stderr, "unknown workload '%s'\n", wname.c_str());
    return 2;
  }
  const xp::Platform plat = xp::scaled(pname == "crill" ? xp::crill()
                                                        : xp::ibex());

  std::printf("tuning %s on %s, 64 processes, %s/proc\n\n", wname.c_str(),
              plat.name.c_str(),
              sim::format_bytes(workload.bytes_per_proc()).c_str());

  struct Best {
    double ms = 1e300;
    std::string what;
  } best;

  xp::Table table({"overlap", "cb size", "time(ms)", "bandwidth"});
  for (coll::OverlapMode mode :
       {coll::OverlapMode::None, coll::OverlapMode::Comm,
        coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    for (std::uint64_t cb : {2ull << 20, 4ull << 20, 8ull << 20}) {
      xp::RunSpec spec;
      spec.platform = plat;
      spec.workload = workload;
      spec.nprocs = 64;
      spec.options.cb_size = cb;
      spec.options.overlap = mode;
      const xp::Series series = xp::execute_series(spec, 3, 0x7E57);
      const double ms = sim::to_millis(series.min_makespan());
      const double bw = static_cast<double>(series.runs[0].bytes) /
                        (ms * 1e-3);
      char a[32];
      std::snprintf(a, sizeof(a), "%.2f", ms);
      table.add_row({coll::to_string(mode), sim::format_bytes(cb), a,
                     sim::format_bandwidth(bw)});
      if (ms < best.ms) {
        best.ms = ms;
        best.what = std::string(coll::to_string(mode)) + " with " +
                    sim::format_bytes(cb) + " buffer";
      }
    }
  }
  table.print();
  std::printf("\nrecommendation: %s (%.2f ms)\n", best.what.c_str(), best.ms);
  return 0;
}
